// Extension bench: sensitivity of the adaptive schemes to the mobility
// model. The paper evaluates only its random-roam pattern; here the same
// schemes run under random-waypoint and group (RPGM) mobility. Expected:
// the adaptive schemes' advantage is model-independent (they react to the
// local density, however it arises); group mobility raises local density
// (teams), which increases SRB for the adaptive schemes.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(40);
  bench::banner("Extension - mobility-model sensitivity",
                "adaptive advantage holds across mobility models", scale);

  struct Model {
    experiment::ScenarioConfig::Mobility kind;
    const char* name;
  };
  const std::vector<Model> models{
      {experiment::ScenarioConfig::Mobility::kRandomRoam, "roam"},
      {experiment::ScenarioConfig::Mobility::kWaypoint, "waypoint"},
      {experiment::ScenarioConfig::Mobility::kGroup, "group"},
  };
  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::counter(2),
      experiment::SchemeSpec::adaptiveCounter(),
  };

  for (int units : {3, 9}) {
    std::cout << "--- " << bench::mapLabel(units) << " map ---\n";
    std::vector<std::string> header{"mobility"};
    for (const auto& s : schemes) {
      header.push_back(s.name() + "_RE");
      header.push_back(s.name() + "_SRB");
    }
    util::Table table(header);
    for (const auto& model : models) {
      std::vector<std::string> row{model.name};
      for (const auto& scheme : schemes) {
        experiment::ScenarioConfig config;
        config.mapUnits = units;
        config.scheme = scheme;
        config.mobility = model.kind;
        experiment::applyScale(config, scale);
        const auto r =
            experiment::runScenarioAveraged(config, scale.repetitions);
        row.push_back(util::fmt(r.re(), 3));
        row.push_back(util::fmt(r.srb(), 3));
      }
      table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
