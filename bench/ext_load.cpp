// Extension (not a paper figure): offered-load saturation sweep. The paper
// evaluates every scheme under one fixed workload (U(0, 2 s) interarrivals
// from uniform sources, ~0.5 broadcasts/s); broadcast-storm severity is
// fundamentally a function of offered load, so this bench asks the question
// the paper cannot: at what load does each scheme's reachability collapse?
//
// Three panels on the 5x5 / 100-host setup (DESIGN.md §12):
//
//   1. Saturation: Poisson arrivals at rates spanning ~two orders of
//      magnitude x scheme. Flooding's per-broadcast redundancy multiplies
//      the channel load, so its RE knee arrives at a much lower offered
//      rate than the suppressive schemes — the storm eating its own
//      deliveries. The "offered/s" column is the realized x-axis.
//   2. Burstiness at matched mean load: uniform vs Poisson vs CBR vs on/off
//      bursts, all ~1 request/s. Bursts pile requests into the contention
//      window that an average-rate metric hides.
//   3. Source locality at the default load: uniform sources vs hotspot-k vs
//      one zone quadrant. Concentrated sources collide in one neighborhood
//      instead of spreading the load across the map.
//
// The workload generator draws from the same dedicated stream the default
// model uses, so the uniform/uniform rows reproduce the fault-free figures'
// numbers exactly.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

experiment::ScenarioConfig baseConfig(const experiment::BenchScale& scale) {
  experiment::ScenarioConfig config;
  config.mapUnits = 5;
  experiment::applyScale(config, scale);
  return config;
}

experiment::SweepAxis schemePanel() {
  return experiment::schemeAxis({
      experiment::SchemeSpec::flooding(),
      experiment::SchemeSpec::counter(3),
      experiment::SchemeSpec::adaptiveCounter(),
      experiment::SchemeSpec::adaptiveLocation(),
      experiment::SchemeSpec::neighborCoverage(),
  });
}

experiment::SweepAxis rateAxis(const std::vector<double>& rates) {
  experiment::SweepAxis axis;
  axis.name = "req/s";
  for (double rate : rates) {
    axis.values.push_back(
        {util::fmt(rate, 1), [rate](experiment::ScenarioConfig& c) {
           c.traffic.arrival = traffic::TrafficConfig::Arrival::kPoisson;
           c.traffic.poissonRatePerSecond = rate;
         }});
  }
  return axis;
}

experiment::SweepAxis burstinessAxis() {
  experiment::SweepAxis axis;
  axis.name = "arrivals";
  axis.values.push_back(
      {"uniform", [](experiment::ScenarioConfig& c) {
         c.traffic.arrival = traffic::TrafficConfig::Arrival::kUniform;
         c.interarrivalMax = 2 * sim::kSecond;  // mean gap 1 s
       }});
  axis.values.push_back(
      {"poisson", [](experiment::ScenarioConfig& c) {
         c.traffic.arrival = traffic::TrafficConfig::Arrival::kPoisson;
         c.traffic.poissonRatePerSecond = 1.0;
       }});
  axis.values.push_back(
      {"cbr", [](experiment::ScenarioConfig& c) {
         c.traffic.arrival = traffic::TrafficConfig::Arrival::kPeriodic;
         c.traffic.period = sim::kSecond;
       }});
  // Mean rate ~1/s: 8 requests per burst, ~0.175 s of intra-burst gaps
  // (7 x U(0, 50 ms)) + 7.8 s mean idle ~= 8 s per burst cycle.
  axis.values.push_back(
      {"burst(8)", [](experiment::ScenarioConfig& c) {
         c.traffic.arrival = traffic::TrafficConfig::Arrival::kBurst;
         c.traffic.burstLength = 8;
         c.traffic.burstGapMax = 50 * sim::kMillisecond;
         c.traffic.burstIdleMean = sim::scaleTrunc(sim::kSecond, 7.8);
       }});
  return axis;
}

experiment::SweepAxis localityAxis() {
  experiment::SweepAxis axis;
  axis.name = "sources";
  axis.values.push_back(
      {"uniform", [](experiment::ScenarioConfig& c) {
         c.traffic.sources = traffic::TrafficConfig::Sources::kUniform;
       }});
  for (int k : {3, 1}) {
    axis.values.push_back(
        {"hotspot-" + std::to_string(k),
         [k](experiment::ScenarioConfig& c) {
           c.traffic.sources = traffic::TrafficConfig::Sources::kHotspot;
           c.traffic.hotspotCount = k;
         }});
  }
  axis.values.push_back(
      {"zone-quadrant", [](experiment::ScenarioConfig& c) {
         c.traffic.sources = traffic::TrafficConfig::Sources::kZone;
         // Defaults: lower-left quadrant of the map.
       }});
  return axis;
}

/// Prints one panel with the realized offered rate alongside the paper
/// metrics, and records every cell into the run report.
void runPanel(const char* title, const experiment::ScenarioConfig& base,
              const std::vector<experiment::SweepAxis>& axes,
              const experiment::BenchScale& scale, bench::Report& report,
              const std::string& labelPrefix) {
  std::cout << "--- " << title << " ---\n";
  const auto cells =
      experiment::runSweep(base, axes, scale.repetitions, /*threads=*/0);

  std::vector<std::string> header;
  for (const auto& axis : axes) header.push_back(axis.name);
  header.insert(header.end(), {"offered/s", "RE", "SRB", "latency(s)"});
  util::Table table(header);
  for (const auto& cell : cells) {
    std::vector<std::string> row = cell.coordinates;
    row.push_back(util::fmt(cell.result.offeredPerSecond(), 2));
    row.push_back(util::fmt(cell.result.re(), 3));
    row.push_back(util::fmt(cell.result.srb(), 3));
    row.push_back(util::fmt(cell.result.latency(), 4));
    table.addRow(std::move(row));

    std::string label = labelPrefix;
    for (const auto& coordinate : cell.coordinates) {
      label += "/" + coordinate;
    }
    report.add(label, cell.result);
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "ext_load");
  const auto scale = experiment::benchScale(20);
  bench::banner(
      "Extension - offered-load saturation sweep",
      "suppression moves the reachability knee to higher offered load",
      scale);
  const experiment::ScenarioConfig base = baseConfig(scale);

  {
    std::vector<experiment::SweepAxis> axes{
        rateAxis({0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}), schemePanel()};
    runPanel("saturation (Poisson arrivals)", base, axes, scale, report,
             "saturation");
  }
  {
    std::vector<experiment::SweepAxis> axes{burstinessAxis(), schemePanel()};
    runPanel("burstiness at ~1 req/s mean", base, axes, scale, report,
             "burstiness");
  }
  {
    std::vector<experiment::SweepAxis> axes{localityAxis(), schemePanel()};
    runPanel("source locality (default load)", base, axes, scale, report,
             "locality");
  }
  return 0;
}
