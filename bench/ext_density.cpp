// Supporting analysis (not a paper figure): the structure of the paper's six
// maps — average node degree, partition structure, and the expected RE
// denominator e. Explains *why* the schemes behave as they do per density:
// the 1x1 map is one dense clique-ish blob; the 9x9/11x11 maps fragment
// into many small components (footnote 2 is why RE is still meaningful
// there). Also reports the lowest-ID cluster backbone size per map.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cluster/assignment.hpp"
#include "experiment/world.hpp"
#include "stats/connectivity.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(1);
  bench::banner("Analysis - map structure per density",
                "density sweep behind all figures: degree, partitioning, e",
                scale);

  util::Table table({"map", "avg degree", "components", "largest comp",
                     "mean e", "heads", "gateways"});
  for (int units : experiment::paperMapSizes()) {
    experiment::ScenarioConfig config;
    config.mapUnits = units;
    config.numHosts = scale.numHosts;
    config.numBroadcasts = 0;
    config.seed = scale.seed;
    experiment::World world(config);
    const auto positions = world.channel().snapshotPositions();
    const double radius = config.phy.radiusMeters;

    const auto labels = stats::componentLabels(positions, radius);
    int componentCount = 0;
    std::vector<int> sizes;
    for (int label : labels) {
      if (label >= componentCount) componentCount = label + 1;
    }
    sizes.assign(static_cast<std::size_t>(componentCount), 0);
    for (int label : labels) ++sizes[static_cast<std::size_t>(label)];
    int largest = 0;
    for (int s : sizes) largest = std::max(largest, s);

    double meanReachable = 0.0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      meanReachable += stats::reachableCount(positions, radius, i);
    }
    meanReachable /= static_cast<double>(positions.size());

    // Cluster backbone on the snapshot.
    std::vector<std::vector<net::HostId>> adjacency(positions.size());
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
      adjacency[i] = world.channel().nodesInRange(net::HostId{i});
    }
    const auto roles = cluster::assignRoles(adjacency);
    int heads = 0;
    int gateways = 0;
    for (const auto& r : roles) {
      heads += r.role == cluster::Role::kHead ? 1 : 0;
      gateways += r.role == cluster::Role::kGateway ? 1 : 0;
    }

    table.addRow({bench::mapLabel(units),
                  util::fmt(stats::averageDegree(positions, radius), 1),
                  std::to_string(componentCount), std::to_string(largest),
                  util::fmt(meanReachable, 1), std::to_string(heads),
                  std::to_string(gateways)});
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
