// Extension bench: end-to-end route-discovery quality per suppression
// scheme per density — the downstream consequence of the paper's RE/SRB
// numbers. Expected shape: schemes with poor sparse-map RE (fixed C=2) miss
// routes there; adaptive schemes match flooding's success at a fraction of
// the frames.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/world.hpp"
#include "routing/route_discovery.hpp"
#include "sim/random.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

struct Row {
  double success;
  double latencyMs;
  double frames;
};

Row run(const experiment::SchemeSpec& scheme, int mapUnits, int requests,
        std::uint64_t seed) {
  experiment::ScenarioConfig config;
  config.mapUnits = mapUnits;
  config.scheme = scheme;
  config.numBroadcasts = 0;
  config.seed = seed;
  experiment::World world(config);
  world.startAgents();
  routing::RoutingHarness routing(world);

  sim::Rng pick(seed ^ 0x5EED);
  sim::TimePoint at = sim::kTimeZero + 100 * sim::kMillisecond;
  const int hosts = config.numHosts;
  for (int i = 0; i < requests; ++i) {
    const net::HostId source{
        static_cast<std::uint32_t>(pick.uniformInt(0, hosts - 1))};
    net::HostId target{static_cast<std::uint32_t>(pick.uniformInt(0, hosts - 1))};
    if (target == source) {
      target = net::HostId{(target.value() + 1) % static_cast<std::uint32_t>(hosts)};
    }
    world.scheduler().schedule(at, [&routing, source, target] {
      routing.discover(source, target);
    });
    at += pick.uniformDuration(200 * sim::kMillisecond, 1 * sim::kSecond);
  }
  world.scheduler().runUntil(at + 10 * sim::kSecond);

  return Row{routing.successRate(), routing.meanLatencySeconds() * 1000.0,
             static_cast<double>(world.channel().framesTransmitted()) /
                 requests};
}

}  // namespace

int main() {
  const auto scale = experiment::benchScale(40);
  bench::banner("Extension - route discovery per scheme",
                "adaptive schemes discover like flooding at a fraction of "
                "the frames",
                scale);

  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::flooding(),
      experiment::SchemeSpec::counter(2),
      experiment::SchemeSpec::adaptiveCounter(),
      experiment::SchemeSpec::adaptiveLocation(),
  };

  for (int units : {3, 7, 11}) {
    std::cout << "--- " << bench::mapLabel(units) << " map ---\n";
    util::Table table({"scheme", "success", "latency(ms)", "frames/req"});
    for (const auto& scheme : schemes) {
      const Row r = run(scheme, units, scale.broadcasts, scale.seed);
      table.addRow({scheme.name(), util::fmtPercent(r.success, 1),
                    util::fmt(r.latencyMs, 1), util::fmt(r.frames, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
