// Ablation (supports the §4.4 claim): "The main reason for a lot of hosts
// missing the broadcast message is collision." Rerun flooding and the
// adaptive schemes with a perfect PHY (no collisions): flooding's RE becomes
// ~1.0 everywhere, showing the storm's damage is collision-induced — and
// showing the suppression schemes' RE advantage over flooding disappears
// while their SRB advantage remains.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(40);
  bench::banner("Ablation - collision model on/off",
                "flooding's RE loss is collision-induced (paper §4.4)",
                scale);

  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::flooding(),
      experiment::SchemeSpec::counter(2),
      experiment::SchemeSpec::adaptiveCounter(),
  };

  for (int units : {1, 3, 5}) {
    std::cout << "--- " << bench::mapLabel(units) << " map ---\n";
    util::Table table({"scheme", "RE(real PHY)", "RE(perfect PHY)",
                       "SRB(real)", "SRB(perfect)"});
    for (const auto& scheme : schemes) {
      experiment::ScenarioConfig real;
      real.mapUnits = units;
      real.scheme = scheme;
      experiment::applyScale(real, scale);
      experiment::ScenarioConfig perfect = real;
      perfect.collisions = false;
      const auto rReal =
          experiment::runScenarioAveraged(real, scale.repetitions);
      const auto rPerfect =
          experiment::runScenarioAveraged(perfect, scale.repetitions);
      table.addRow({scheme.name(), util::fmt(rReal.re(), 3),
                    util::fmt(rPerfect.re(), 3), util::fmt(rReal.srb(), 3),
                    util::fmt(rPerfect.srb(), 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
