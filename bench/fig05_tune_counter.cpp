// Fig. 5 (a-d) + Fig. 6: tuning the adaptive counter threshold C(n).
//
// Reproduces the paper's four-step tuning methodology (§4.1):
//   (a) slope before n1   - candidates 222333444555.., 22334455.., 23455..
//   (b) value of n1       - 233.., 2344.., 23455.., 234566..
//   (c) value of n2       - linear decay from C(4)=5 to 2 at n2 = 8, 12, 16
//   (d) decay shape       - linear / convex / concave / step between 4 and 12
// Each candidate is run across all six maps; RE and SRB are reported.
// Paper's conclusions: slope 1 (23455..) wins in sparse maps; n1 = 4;
// n2 = 12; and the linear decay (solid line of Fig. 6) is the suggestion.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/threshold.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

struct Candidate {
  std::string label;
  core::CounterThreshold fn;
};

void runPanel(bench::Report& report, const std::string& panel,
              const std::string& title, const std::vector<Candidate>& cands,
              const experiment::BenchScale& scale) {
  std::cout << "--- " << title << " ---\n";
  std::vector<std::string> header{"map"};
  for (const auto& c : cands) {
    header.push_back(c.label + "_RE");
    header.push_back(c.label + "_SRB");
  }
  util::Table table(header);
  for (int units : experiment::paperMapSizes()) {
    std::vector<std::string> row{bench::mapLabel(units)};
    for (const auto& cand : cands) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = experiment::SchemeSpec::adaptiveCounter(cand.fn,
                                                              cand.label);
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      report.add(panel + "/" + cand.label + "/" + bench::mapLabel(units), r);
      row.push_back(util::fmt(r.re(), 3));
      row.push_back(util::fmt(r.srb(), 3));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig05_tune_counter");
  const auto scale = experiment::benchScale(40);
  bench::banner("Fig. 5 - tuning C(n) for the adaptive counter scheme",
                "slope 1 best in sparse maps; n1=4, n2=12; linear decay",
                scale);

  using CT = core::CounterThreshold;

  runPanel(report, "5a", "Fig. 5a: slope before n1",
           {{"s1/3", CT::fromDigits("22233344455555")},
            {"s1/2", CT::fromDigits("22334455555")},
            {"s1", CT::fromDigits("23455555")}},
           scale);

  runPanel(report, "5b", "Fig. 5b: choosing n1",
           {{"n1=2", CT::fromDigits("233")},
            {"n1=3", CT::fromDigits("2344")},
            {"n1=4", CT::fromDigits("23455")},
            {"n1=5", CT::fromDigits("234566")}},
           scale);

  runPanel(report, "5c", "Fig. 5c: choosing n2 (linear decay from 5 to 2)",
           {{"n2=8", CT::rampAndDecay(4, 8)},
            {"n2=12", CT::rampAndDecay(4, 12)},
            {"n2=16", CT::rampAndDecay(4, 16)}},
           scale);

  runPanel(report, "5d", "Fig. 5d: decay shape between n1=4 and n2=12",
           {{"linear", CT::rampAndDecay(4, 12, core::DecayShape::kLinear)},
            {"convex", CT::rampAndDecay(4, 12, core::DecayShape::kConvex)},
            {"concave", CT::rampAndDecay(4, 12, core::DecayShape::kConcave)},
            {"step", CT::rampAndDecay(4, 12, core::DecayShape::kStep)}},
           scale);

  // Fig. 6: the candidate functions themselves.
  std::cout << "--- Fig. 6: C(n) candidates (value per n) ---\n";
  util::Table fig6({"n", "linear(sugg.)", "convex", "concave", "step"});
  const auto lin = CT::suggested();
  const auto convex = CT::rampAndDecay(4, 12, core::DecayShape::kConvex);
  const auto concave = CT::rampAndDecay(4, 12, core::DecayShape::kConcave);
  const auto step = CT::rampAndDecay(4, 12, core::DecayShape::kStep);
  for (int n = 1; n <= 14; ++n) {
    fig6.addRow({std::to_string(n), std::to_string(lin(n)),
                 std::to_string(convex(n)), std::to_string(concave(n)),
                 std::to_string(step(n))});
  }
  fig6.print(std::cout);
  std::cout << "\nSuggested C(n) as digit sequence: " << lin.toDigits()
            << "\n\n";
  return 0;
}
