// google-benchmark comparison of the channel's spatial-grid range resolution
// against the exhaustive scan (DESIGN.md §7). Not a paper figure — the
// regression guard for the grid path, run at tiny scale by the `perf_smoke`
// ctest label.
//
// The workload mirrors what one simulation epoch pays: mobile hosts whose
// positions come through the same mobility-model callbacks the real World
// wires up, time advancing between iterations (so the grid is rebuilt every
// epoch, never amortized across iterations for free), and neighbor
// resolution for every host — the per-receiver work transmit() does plus the
// oracle neighborhood queries the adaptive schemes issue at frame-end
// timestamps.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "experiment/runner.hpp"
#include "mobility/map.hpp"
#include "mobility/random_roam.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

using namespace manet;

namespace {

class NullListener : public phy::Channel::Listener {
 public:
  void onFrameReceived(const phy::Frame&, phy::DropReason) override {}
};

/// A channel populated like a World: one RandomRoam model per host, position
/// callbacks evaluated at the scheduler's current time.
struct MobileChannel {
  MobileChannel(int hosts, int mapUnits, bool grid) {
    const mobility::MapSpec map = mobility::MapSpec::square(mapUnits);
    sim::Rng master(7);
    phy::PhyParams params;
    channel = std::make_unique<phy::Channel>(scheduler, params);
    channel->setGridEnabled(grid);
    for (int i = 0; i < hosts; ++i) {
      sim::Rng rng = master.fork(0xA000 + static_cast<std::uint64_t>(i));
      mobility::RoamParams roam;
      roam.maxSpeedMps = mobility::kmhToMps(10.0 * mapUnits);
      models.push_back(std::make_unique<mobility::RandomRoam>(
          map, map.uniformPoint(rng), roam, rng.fork(0xA0)));
      mobility::MobilityModel* model = models.back().get();
      channel->attach(net::HostId{static_cast<std::uint32_t>(i)}, &listener,
                      [this, model] { return model->positionAt(scheduler.now()); });
    }
  }

  /// Moves simulation time forward so the next query sees a fresh epoch.
  void advance(sim::Duration dt) {
    scheduler.schedule(scheduler.now() + dt, [] {});
    scheduler.runAll();
  }

  sim::Scheduler scheduler;
  NullListener listener;
  std::unique_ptr<phy::Channel> channel;
  std::vector<std::unique_ptr<mobility::MobilityModel>> models;
};

/// Neighbor resolution for every host at one epoch: the inner loop of
/// transmit() and of the oracle neighborhood queries.
void BM_NeighborResolution(benchmark::State& state, bool grid) {
  const int hosts = static_cast<int>(state.range(0));
  const int mapUnits = static_cast<int>(state.range(1));
  MobileChannel mc(hosts, mapUnits, grid);
  std::vector<net::HostId> receivers;  // reused like transmit()'s scratch
  for (auto _ : state) {
    // 1 ms epochs: the spacing of back-to-back frames during a storm, so
    // per-epoch costs (mobility integration, grid rebuild) weigh as they
    // do in a real run.
    mc.advance(1 * sim::kMillisecond);
    std::size_t neighbors = 0;
    for (int i = 0; i < hosts; ++i) {
      mc.channel->nodesInRange(net::HostId{static_cast<std::uint32_t>(i)}, receivers);
      neighbors += receivers.size();
    }
    benchmark::DoNotOptimize(neighbors);
  }
  state.SetItemsProcessed(state.iterations() * hosts);
}
void BM_NeighborResolutionGrid(benchmark::State& state) {
  BM_NeighborResolution(state, true);
}
void BM_NeighborResolutionExhaustive(benchmark::State& state) {
  BM_NeighborResolution(state, false);
}
// The acceptance case: 100 hosts on the 1x1 map (everyone in range of
// everyone), plus the mid-density 5x5 map where cell culling also kicks in.
BENCHMARK(BM_NeighborResolutionGrid)->Args({100, 1})->Args({100, 5})
    ->Args({400, 5});
BENCHMARK(BM_NeighborResolutionExhaustive)->Args({100, 1})->Args({100, 5})
    ->Args({400, 5});

/// The oracle neighbor-count query `n` that the adaptive schemes (AC/AL/NC
/// tuning) issue on every rebroadcast decision — many per frame-end epoch.
void BM_OracleNeighborCount(benchmark::State& state, bool grid) {
  const int hosts = static_cast<int>(state.range(0));
  const int mapUnits = static_cast<int>(state.range(1));
  MobileChannel mc(hosts, mapUnits, grid);
  for (auto _ : state) {
    mc.advance(1 * sim::kMillisecond);
    std::size_t total = 0;
    for (int i = 0; i < hosts; ++i) {
      total += mc.channel->inRangeCount(net::HostId{static_cast<std::uint32_t>(i)});
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * hosts);
}
void BM_OracleNeighborCountGrid(benchmark::State& state) {
  BM_OracleNeighborCount(state, true);
}
void BM_OracleNeighborCountExhaustive(benchmark::State& state) {
  BM_OracleNeighborCount(state, false);
}
BENCHMARK(BM_OracleNeighborCountGrid)->Args({100, 1})->Args({100, 5});
BENCHMARK(BM_OracleNeighborCountExhaustive)->Args({100, 1})->Args({100, 5});

/// Floor probe: one epoch advance + a single query. Grid-on pays mobility
/// integration + the full rebuild here; the difference to the 100-query
/// benchmarks above is the pure per-query cost.
void BM_EpochFloor(benchmark::State& state, bool grid) {
  MobileChannel mc(100, 1, grid);
  for (auto _ : state) {
    mc.advance(1 * sim::kMillisecond);
    benchmark::DoNotOptimize(mc.channel->inRangeCount(net::HostId{0}));
  }
}
void BM_EpochFloorGrid(benchmark::State& state) { BM_EpochFloor(state, true); }
void BM_EpochFloorExhaustive(benchmark::State& state) {
  BM_EpochFloor(state, false);
}
BENCHMARK(BM_EpochFloorGrid);
BENCHMARK(BM_EpochFloorExhaustive);

/// Full transmit + event-drain cycles (receiver resolution, busy/idle
/// bookkeeping, reception completion) from a rotating source.
void BM_TransmitDrain(benchmark::State& state, bool grid) {
  const int hosts = static_cast<int>(state.range(0));
  const int mapUnits = static_cast<int>(state.range(1));
  MobileChannel mc(hosts, mapUnits, grid);
  int src = 0;
  for (auto _ : state) {
    mc.advance(1 * sim::kMillisecond);
    const net::HostId id{static_cast<std::uint32_t>(src)};
    mc.channel->transmit(id, net::makeDataPacket({id, net::BroadcastSeq{0}}, id), 280);
    mc.scheduler.runAll();
    src = (src + 1) % hosts;
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_TransmitDrainGrid(benchmark::State& state) {
  BM_TransmitDrain(state, true);
}
void BM_TransmitDrainExhaustive(benchmark::State& state) {
  BM_TransmitDrain(state, false);
}
BENCHMARK(BM_TransmitDrainGrid)->Args({100, 1})->Args({100, 5});
BENCHMARK(BM_TransmitDrainExhaustive)->Args({100, 1})->Args({100, 5});

/// End-to-end scenario throughput with the grid on/off; the per-result
/// frames-per-wall-second rate is what BENCH-style outputs report.
void BM_ScenarioThroughput(benchmark::State& state, bool grid) {
  double framesPerSec = 0.0;
  for (auto _ : state) {
    experiment::ScenarioConfig config;
    config.mapUnits = static_cast<int>(state.range(0));
    config.numHosts = 100;
    config.numBroadcasts = 5;
    config.scheme = experiment::SchemeSpec::adaptiveCounter();
    config.channelGrid = grid;
    config.seed = 3;
    const experiment::RunResult r = experiment::runScenario(config);
    framesPerSec = r.framesPerWallSecond();
    benchmark::DoNotOptimize(r);
  }
  state.counters["frames/s"] = framesPerSec;
  state.SetItemsProcessed(state.iterations() * 5);
}
void BM_ScenarioThroughputGrid(benchmark::State& state) {
  BM_ScenarioThroughput(state, true);
}
void BM_ScenarioThroughputExhaustive(benchmark::State& state) {
  BM_ScenarioThroughput(state, false);
}
BENCHMARK(BM_ScenarioThroughputGrid)
    ->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScenarioThroughputExhaustive)
    ->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
