// Fig. 2: cf(n, k) - the probability that exactly k of n receiving hosts
// experience no contention when all rebroadcast. Paper's shape: cf(n, 0)
// rises above 0.8 by n = 6; cf(n, 1) drops sharply; cf(n, k >= 2) negligible;
// cf(n, n-1) = 0 structurally.
#include <iostream>

#include "bench_common.hpp"
#include "geom/contention.hpp"
#include "sim/random.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale();
  bench::banner("Fig. 2 - cf(n,k)",
                "cf(n,0) > 0.8 for n >= 6; cf(n,1) drops sharply", scale);

  const int trials =
      static_cast<int>(util::envInt("REPRO_MC_TRIALS", 20000));
  sim::Rng rng(scale.seed);

  util::Table table(
      {"n", "cf(n,0)", "cf(n,1)", "cf(n,2)", "cf(n,3)", "cf(n,4)"});
  for (int n = 1; n <= 10; ++n) {
    const auto dist = geom::contentionFreeDistribution(n, 500.0, rng, trials);
    std::vector<std::string> row{std::to_string(n)};
    for (int k = 0; k <= 4; ++k) {
      row.push_back(k < static_cast<int>(dist.size())
                        ? util::fmt(dist[static_cast<std::size_t>(k)], 4)
                        : "-");
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
