// Fig. 13: overall comparison per map (a-f = 1x1 .. 11x11): flooding,
// C=2, C=6, AC, A=0.1871, A=0.0134, AL, and NC with dynamic hello interval
// (NC-DHI). Each cell is an (SRB, RE) point; the paper plots them as a
// scatter where upper-right is best.
// Paper's shape: flooding only competitive on mid-density maps; NC-DHI best
// in dense maps; AC/AL best in sparse maps; adaptive schemes hold RE >= 95%
// everywhere.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig13_overall");
  const auto scale = experiment::benchScale(60);
  bench::banner("Fig. 13 - overall comparison (one table per map)",
                "adaptive schemes keep RE >= ~95% at every density", scale);

  struct Entry {
    experiment::SchemeSpec scheme;
    bool helloBased = false;
    bool dhi = false;
  };
  std::vector<Entry> entries;
  entries.push_back({experiment::SchemeSpec::flooding()});
  entries.push_back({experiment::SchemeSpec::counter(2)});
  entries.push_back({experiment::SchemeSpec::counter(6)});
  entries.push_back({experiment::SchemeSpec::adaptiveCounter()});
  entries.push_back({experiment::SchemeSpec::location(0.1871)});
  entries.push_back({experiment::SchemeSpec::location(0.0134)});
  entries.push_back({experiment::SchemeSpec::adaptiveLocation()});
  Entry nc{experiment::SchemeSpec::neighborCoverage()};
  nc.helloBased = true;
  nc.dhi = true;
  nc.scheme.label = "NC-DHI";
  entries.push_back(nc);

  for (int units : experiment::paperMapSizes()) {
    std::cout << "--- " << bench::mapLabel(units) << " map (max speed "
              << 10 * units << " km/h) ---\n";
    util::Table table({"scheme", "SRB", "RE", "latency(s)"});
    for (const auto& entry : entries) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = entry.scheme;
      if (entry.helloBased) {
        config.neighborSource = experiment::NeighborSource::kHello;
        config.hello.dynamic = entry.dhi;
      }
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      report.add(bench::mapLabel(units) + "/" + entry.scheme.name(), r);
      table.addRow({entry.scheme.name(), util::fmt(r.srb(), 3),
                    util::fmt(r.re(), 3), util::fmt(r.latency(), 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
